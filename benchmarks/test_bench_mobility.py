"""Mobility microbenchmark: journey-scale moving-fleet throughput.

Times a 100k-client *moving* fleet -- every client runs a 5-hop warm
journey (random-waypoint motion, window queries from each position) --
through :func:`repro.sim.fleet.run_mobile_fleet` and writes clients/sec
and queries/sec to ``BENCH_mobility.json`` at the repository root.

The run must complete via the batched machinery (distinct (journey, phase)
executions collapsed further onto hop-1 entry landmarks), never per-client
Python loops: the executions assertion pins the collapse, and serial vs
parallel runs must produce identical population statistics.  Since PR 8
warm DSI window journeys advance on the SoA journey kernel
(``simulate_window_journeys``) -- the backend stages record it and the
full-scale run gates a clients/sec floor on it.  ``REPRO_BENCH_SMOKE=1``
shrinks the fleet for CI.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.broadcast.config import SystemConfig
from repro.mobility import trajectory_workload
from repro.sim.fleet import run_mobile_fleet
from repro.sim.runner import build_index
from repro.spatial.datasets import uniform_dataset

from conftest import BENCH_SMOKE, emit, write_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_mobility.json"

N_CLIENTS = 20_000 if BENCH_SMOKE else 100_000
N_OBJECTS = 300 if BENCH_SMOKE else 600
N_JOURNEYS = 6 if BENCH_SMOKE else 12
N_STEPS = 5
DWELL_PACKETS = 1_500
MAX_WALL_S = 60.0
#: Parallel may trail serial by at most this factor (scheduling noise).
PARALLEL_SLACK = 0.9
#: Full-scale clients/sec floor for the 1ch journey fleet on the SoA
#: journey kernel (warm window journeys ran ~55k/s before PR 8).
MIN_MOBILE_CPS = 250_000.0


def test_mobility_bench():
    dataset = uniform_dataset(N_OBJECTS, seed=7)
    trajectories = trajectory_workload(
        N_JOURNEYS, N_STEPS, "waypoint", query="window",
        win_side_ratio=0.1, dwell_packets=DWELL_PACKETS, seed=13,
    )
    stages = {
        "smoke": BENCH_SMOKE,
        "n_clients": N_CLIENTS,
        "n_objects": N_OBJECTS,
        "n_journeys": N_JOURNEYS,
        "n_steps": N_STEPS,
    }

    config = SystemConfig(packet_capacity=64)
    index = build_index("dsi", dataset, config, use_cache=True)
    reference = None
    for mode, parallel in (("serial", False), ("parallel", True)):
        t0 = time.perf_counter()
        result = run_mobile_fleet(
            index, dataset, config, trajectories, N_CLIENTS,
            seed=9, parallel=parallel,
        )
        wall = time.perf_counter() - t0
        key = f"mobile_1ch_{mode}"
        stages[f"{key}_s"] = wall
        stages[f"{key}_clients_per_sec"] = N_CLIENTS / wall
        stages[f"{key}_queries_per_sec"] = N_CLIENTS * N_STEPS / wall
        stages[f"{key}_executions"] = result.n_executions
        stages[f"{key}_backend"] = result.backend
        if not BENCH_SMOKE:
            assert wall < MAX_WALL_S, f"{key} took {wall:.1f}s (> {MAX_WALL_S}s)"
        # The batched path: the fleet collapses onto distinct (journey,
        # phase) executions, orders of magnitude below the population.
        assert result.n_executions <= N_JOURNEYS * result.n_phases
        assert result.n_executions < N_CLIENTS // 10
        # serial and parallel must agree exactly
        if reference is None:
            reference = (
                result.result.latency.mean,
                result.result.tuning.mean,
                result.n_executions,
            )
        else:
            assert (
                result.result.latency.mean,
                result.result.tuning.mean,
                result.n_executions,
            ) == reference
    if (os.cpu_count() or 1) >= 2 and N_CLIENTS >= 100_000:
        serial_cps = stages["mobile_1ch_serial_clients_per_sec"]
        parallel_cps = stages["mobile_1ch_parallel_clients_per_sec"]
        assert parallel_cps >= PARALLEL_SLACK * serial_cps, (
            f"parallel mobile fleet lost to serial: "
            f"{parallel_cps:,.0f} vs {serial_cps:,.0f} clients/s"
        )
    # Warm window journeys must run on the SoA journey kernel at population
    # speed -- the PR 8 cliff closure.
    if not os.environ.get("REPRO_PURE"):
        assert stages["mobile_1ch_serial_backend"] == "numpy"
        if not BENCH_SMOKE:
            cps = stages["mobile_1ch_serial_clients_per_sec"]
            assert cps >= MIN_MOBILE_CPS, (
                f"mobile fleet kernel below floor: "
                f"{cps:,.0f} < {MIN_MOBILE_CPS:,.0f} clients/s"
            )

    # Striped multi-channel journeys, bounded phase resolution (control
    # channels keep most landmarks distinct, so this is the heavy variant).
    config4 = SystemConfig(packet_capacity=64, n_channels=4)
    index4 = build_index("dsi", dataset, config4, use_cache=True)
    t0 = time.perf_counter()
    result4 = run_mobile_fleet(
        index4, dataset, config4, trajectories, N_CLIENTS,
        seed=9, max_phases=64,
    )
    wall4 = time.perf_counter() - t0
    stages["mobile_4ch_serial_s"] = wall4
    stages["mobile_4ch_serial_clients_per_sec"] = N_CLIENTS / wall4
    stages["mobile_4ch_serial_executions"] = result4.n_executions
    stages["mobile_4ch_serial_backend"] = result4.backend

    # Journey metrics travel with the benchmark for trajectory tracking.
    stages["journey_latency_bytes"] = result.result.latency.mean
    stages["journey_tuning_bytes"] = result.result.tuning.mean
    stages["hop_latency_bytes"] = result.mean_hop_latency_bytes
    stages["staleness_distance"] = result.mean_staleness

    write_bench(BENCH_JSON, stages)
    emit(
        "BENCH mobility (journey fleets)",
        "\n".join(
            f"{k}: {v:,.0f}" if isinstance(v, float) else f"{k}: {v}"
            for k, v in sorted(stages.items())
        ),
    )
