"""Table 1: performance deterioration in error-prone environments.

Paper claim: every index degrades as the link-error ratio theta grows, but
DSI degrades the least (fully distributed structure -> instant recovery),
while the R-tree degrades the most (a lost node blocks its whole subtree
until the next copy).
"""

from __future__ import annotations

from repro.sim import format_table, link_error_table

from conftest import emit

THETAS = (0.2, 0.5, 0.7)


def test_table1_deterioration_uniform(benchmark, uniform, scale, processes):
    rows = benchmark.pedantic(
        link_error_table,
        kwargs=dict(
            dataset=uniform,
            thetas=THETAS,
            capacity=64,
            n_queries=scale.n_queries_errors,
            k=10,
            processes=processes,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Table 1: deterioration (%) under link errors (UNIFORM, 64-byte packets)",
        format_table(
            rows,
            columns=[
                "index",
                "theta",
                "window_latency_pct",
                "window_tuning_pct",
                "knn_latency_pct",
                "knn_tuning_pct",
            ],
            title="Table 1",
        ),
    )

    # Shape check: at the highest error ratio DSI's window-query latency
    # deteriorates no more than the R-tree's (the paper's headline claim).
    worst = {r["index"]: r for r in rows if r["theta"] == max(THETAS)}
    assert worst["DSI"]["window_latency_pct"] <= worst["R-tree"]["window_latency_pct"] + 5.0
