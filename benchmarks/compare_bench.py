#!/usr/bin/env python
"""Benchmark regression gate: freshly emitted BENCH JSONs vs committed baselines.

Compares the per-stage numbers of ``BENCH_perf.json`` / ``BENCH_fleet.json``
against the baselines committed at the repository root (or any explicitly
given baseline files), prints a per-stage delta table and exits non-zero
when a stage regresses beyond the tolerance band.

Stage semantics are inferred from the key name:

* ``*_s``                -- wall-clock seconds, lower is better;
* ``*_clients_per_sec``  -- throughput, higher is better;
* ``*_speedup*``         -- ratio, higher is better;
* everything else numeric (counts, sizes) must match exactly;
* string-valued stages (``*_backend``) must match exactly -- a fleet stage
  silently falling off the numpy kernel onto the reference path is a
  regression even before the throughput number moves.

Timing stages are inherently noisy (shared CI runners, cold caches), so the
default tolerance allows a generous 50% slowdown before failing; tighten
with ``--tolerance`` for quieter machines.  ``--warn-only`` always exits 0
(the CI smoke job runs in this mode: deltas are surfaced in the log without
gating merges on runner weather).

Usage::

    python benchmarks/compare_bench.py \
        [--fresh-perf BENCH_perf.json] [--fresh-fleet BENCH_fleet.json] \
        [--fresh-mobility BENCH_mobility.json] [--fresh-sched BENCH_sched.json] \
        [--baseline-perf <committed>] [--baseline-fleet <committed>] \
        [--baseline-mobility <committed>] [--baseline-sched <committed>] \
        [--tolerance 0.5] [--warn-only]

With no arguments the fresh files are read from the repository root and the
baselines from ``git show HEAD:<file>`` -- i.e. "did my working tree make
the benches worse than the last commit?".

Fresh files produced in smoke mode are compared against the committed
*smoke* baselines (``BENCH_*.smoke.json``) when those exist, so the CI
perf-smoke job gates like-for-like; a smoke fresh file with only a
full-scale baseline available degrades to an informational comparison (the
scales are incommensurable by construction).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Stage-key suffix -> (direction, kind); direction +1 = higher is better.
_EXACT_KEYS = (
    "executions", "n_clients", "n_objects", "n_queries", "n_encode", "bound",
    "n_journeys", "n_steps", "n_channels",
)


def _flatten(doc: Dict) -> Dict[str, float]:
    """Numeric leaves of a BENCH document (perf nests under "stages")."""
    flat: Dict[str, float] = {}
    for key, value in doc.items():
        if isinstance(value, dict):
            for sub, v in value.items():
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    flat[f"{key}.{sub}"] = float(v)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[key] = float(value)
    return flat


def _flatten_str(doc: Dict) -> Dict[str, str]:
    """String-valued stage leaves (``*_backend`` and friends).

    ``host`` and ``meta`` are provenance, not measurements -- they
    legitimately differ between the baseline's machine and this one.
    """
    flat: Dict[str, str] = {}
    for key, value in doc.items():
        if key in ("host", "meta"):
            continue
        if isinstance(value, dict):
            for sub, v in value.items():
                if isinstance(v, str):
                    flat[f"{key}.{sub}"] = v
        elif isinstance(value, str):
            flat[key] = value
    return flat


def _compare_strings(fresh: Dict[str, str], base: Dict[str, str]) -> List[str]:
    """Failures among the string stages (exact match; new stages pass)."""
    failures: List[str] = []
    for key in sorted(base):
        if key not in fresh:
            failures.append(f"{key}: missing from fresh run")
        elif fresh[key] != base[key]:
            failures.append(f"{key}: {base[key]!r} -> {fresh[key]!r}")
    return failures


def _classify(key: str) -> str:
    """"time" (lower better), "throughput" (higher better), "exact" or "info"."""
    base = key.rsplit(".", 1)[-1]
    if any(tag in base for tag in _EXACT_KEYS):
        return "exact"
    if base.endswith("_s"):
        return "time"
    if "clients_per_sec" in base or "speedup" in base:
        return "throughput"
    return "info"


def _load(path_or_none: Optional[str], default: Path) -> Tuple[str, Dict]:
    path = Path(path_or_none) if path_or_none else default
    return str(path), json.loads(path.read_text())


def _git_baseline(name: str) -> Optional[Dict]:
    proc = subprocess.run(
        ["git", "-C", str(REPO_ROOT), "show", f"HEAD:{name}"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def _sibling_time_key(key: str) -> Optional[str]:
    """The ``*_s`` wall-clock stage a throughput stage was derived from."""
    for suffix in ("_clients_per_sec", "_queries_per_sec"):
        if key.endswith(suffix):
            return key[: -len(suffix)] + "_s"
    return None


def _is_parallel_stage(key: str) -> bool:
    """Whether a stage measures multicore behaviour (speedups, parallel legs)."""
    base = key.rsplit(".", 1)[-1]
    return "speedup" in base or "parallel" in base


def compare(
    fresh: Dict[str, float],
    base: Dict[str, float],
    tolerance: float,
    min_time: float = 0.2,
    single_cpu: Optional[bool] = None,
) -> Tuple[List[Tuple[str, str, float, float, str]], List[str]]:
    """Per-stage rows ``(key, kind, baseline, fresh, verdict)`` and failures.

    Timing stages where both sides are below ``min_time`` seconds are
    reported but never fail: at that scale the numbers measure scheduler
    noise, allocator luck and cache weather, not the code.  The same floor
    shields the throughput stages *derived from* such timings (a
    clients-per-sec figure computed from a sub-noise wall clock is the same
    noise, inverted), and speedup ratios -- quotients of two micro-timings
    -- get twice the tolerance band.

    On a single-CPU host (``single_cpu``; autodetected from
    ``os.cpu_count()`` when ``None``) the parallel stages -- speedup ratios
    and ``*_parallel_*`` legs -- are reported but never gate: a process pool
    degraded to one worker measures fork overhead, not the sharding code,
    so comparing it against a multicore baseline is meaningless.
    """
    if single_cpu is None:
        single_cpu = (os.cpu_count() or 1) == 1
    rows: List[Tuple[str, str, float, float, str]] = []
    failures: List[str] = []
    for key in sorted(set(base) | set(fresh)):
        if single_cpu and _is_parallel_stage(key):
            rows.append(
                (key, "-", base.get(key, float("nan")),
                 fresh.get(key, float("nan")), "skipped (1 cpu)")
            )
            continue
        if key not in fresh:
            rows.append((key, "-", base[key], float("nan"), "missing"))
            failures.append(f"{key}: missing from fresh run")
            continue
        if key not in base:
            rows.append((key, "-", float("nan"), fresh[key], "new"))
            continue
        kind = _classify(key)
        b, f = base[key], fresh[key]
        verdict = "ok"
        if kind == "exact":
            if b != f:
                verdict = "CHANGED"
                failures.append(f"{key}: expected {b:g}, got {f:g}")
        elif kind == "time" and b > 0:
            ratio = f / b
            if ratio > 1.0 + tolerance:
                if b < min_time and f < min_time:
                    verdict = f"noisy x{ratio:.2f} (sub-{min_time:g}s)"
                else:
                    verdict = f"SLOWER x{ratio:.2f}"
                    failures.append(f"{key}: {b:.4f}s -> {f:.4f}s (x{ratio:.2f})")
            elif ratio < 1.0:
                verdict = f"faster x{b / max(f, 1e-12):.2f}"
        elif kind == "throughput" and b > 0:
            ratio = f / b
            band = 2.0 * tolerance if "speedup" in key else tolerance
            if ratio < 1.0 / (1.0 + band):
                sibling = _sibling_time_key(key)
                if sibling is not None and (
                    base.get(sibling, min_time) < min_time
                    and fresh.get(sibling, min_time) < min_time
                ):
                    verdict = f"noisy x{1.0 / ratio:.2f} (sub-{min_time:g}s basis)"
                else:
                    verdict = f"REGRESSED x{1.0 / ratio:.2f}"
                    failures.append(f"{key}: {b:,.0f} -> {f:,.0f} (x{ratio:.2f})")
            elif ratio > 1.0:
                verdict = f"better x{ratio:.2f}"
        rows.append((key, kind, b, f, verdict))
    return rows, failures


def _print_table(title: str, rows: List[Tuple[str, str, float, float, str]]) -> None:
    print(f"\n{title}")
    print(f"{'stage':44s} {'kind':10s} {'baseline':>14s} {'fresh':>14s}  verdict")
    print("-" * 100)
    for key, kind, b, f, verdict in rows:
        print(f"{key:44s} {kind:10s} {b:14.6g} {f:14.6g}  {verdict}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh-perf", default=None)
    parser.add_argument("--fresh-fleet", default=None)
    parser.add_argument("--fresh-mobility", default=None)
    parser.add_argument("--fresh-sched", default=None)
    parser.add_argument("--baseline-perf", default=None)
    parser.add_argument("--baseline-fleet", default=None)
    parser.add_argument("--baseline-mobility", default=None)
    parser.add_argument("--baseline-sched", default=None)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fractional slowdown allowed before a timing stage fails (default 0.5)",
    )
    parser.add_argument(
        "--min-time",
        type=float,
        default=0.2,
        help="timing stages below this many seconds never fail (default 0.2)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="print deltas but always exit 0",
    )
    args = parser.parse_args(argv)

    all_failures: List[str] = []
    compared = 0
    for label, fresh_arg, base_arg in (
        ("BENCH_perf.json", args.fresh_perf, args.baseline_perf),
        ("BENCH_fleet.json", args.fresh_fleet, args.baseline_fleet),
        ("BENCH_mobility.json", args.fresh_mobility, args.baseline_mobility),
        ("BENCH_sched.json", args.fresh_sched, args.baseline_sched),
    ):
        fresh_path = Path(fresh_arg) if fresh_arg else REPO_ROOT / label
        if not fresh_path.exists():
            print(f"{label}: fresh file {fresh_path} not found -- skipped")
            continue
        fresh_doc = json.loads(fresh_path.read_text())
        if base_arg:
            base_doc = json.loads(Path(base_arg).read_text())
            base_src = base_arg
        else:
            base_doc = _git_baseline(label)
            base_src = f"git HEAD:{label}"
            if fresh_doc.get("smoke"):
                # A smoke-mode fresh run gates against the committed smoke
                # baseline when one exists (like for like).
                smoke_name = label.replace(".json", ".smoke.json")
                smoke_doc = _git_baseline(smoke_name)
                if smoke_doc is not None:
                    base_doc, base_src = smoke_doc, f"git HEAD:{smoke_name}"
            if base_doc is None:
                print(f"{label}: no committed baseline -- skipped")
                continue
        fresh_flat, base_flat = _flatten(fresh_doc), _flatten(base_doc)
        if fresh_doc.get("smoke") != base_doc.get("smoke") and "smoke" in base_doc:
            print(
                f"{label}: smoke-mode mismatch (baseline smoke={base_doc.get('smoke')}, "
                f"fresh smoke={fresh_doc.get('smoke')}) -- deltas are informational only"
            )
            rows, _ = compare(fresh_flat, base_flat, args.tolerance, args.min_time)
            _print_table(f"{label} ({fresh_path} vs {base_src})", rows)
            compared += 1
            continue
        rows, failures = compare(fresh_flat, base_flat, args.tolerance, args.min_time)
        _print_table(f"{label} ({fresh_path} vs {base_src})", rows)
        all_failures.extend(f"{label}: {msg}" for msg in failures)
        str_failures = _compare_strings(
            _flatten_str(fresh_doc), _flatten_str(base_doc)
        )
        for msg in str_failures:
            print(f"  {label} string stage: {msg}")
        all_failures.extend(f"{label}: {msg}" for msg in str_failures)
        compared += 1

    if not compared:
        print("nothing compared")
        return 0
    if all_failures:
        print(f"\n{len(all_failures)} regression(s) beyond tolerance:")
        for msg in all_failures:
            print(f"  - {msg}")
        if args.warn_only:
            print("(warn-only mode: exiting 0)")
            return 0
        return 1
    print("\nall stages within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
