"""Figure 11: NN and 10NN queries vs packet capacity (DSI vs R-tree vs HCI).

Paper claim: DSI beats both tree indexes, with particularly large margins in
access latency (HCI needs multiple phases, the R-tree needs the root and its
broadcast-ordered descent); DSI stays stable as capacity grows.
"""

from __future__ import annotations

import pytest

from repro.sim import figure_report, knn_capacity_sweep, pivot_metric

from conftest import emit


@pytest.mark.parametrize("k", [1, 10])
def test_fig11_knn_vs_capacity_uniform(benchmark, uniform, scale, k, processes):
    rows = benchmark.pedantic(
        knn_capacity_sweep,
        kwargs=dict(
            dataset=uniform,
            capacities=scale.capacities_small,
            k=k,
            n_queries=scale.n_queries,
            processes=processes,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Figure 11: {k}NN queries vs packet capacity (UNIFORM)",
        figure_report(rows, x_key="capacity", title=f"Fig 11 (k={k})"),
    )

    # Shape check: DSI's access latency is the best at every capacity.
    for point in pivot_metric(rows, "capacity", "latency_bytes"):
        if point.get("R-tree") is not None:
            assert point["DSI"] <= point["R-tree"]
        assert point["DSI"] <= point["HCI"]
