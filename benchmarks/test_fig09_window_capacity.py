"""Figure 9: window queries vs packet capacity (DSI vs R-tree vs HCI).

Paper claim: DSI needs less access latency and tuning time than both tree
indexes, and its performance stays nearly flat as the packet capacity grows.
"""

from __future__ import annotations

from repro.sim import figure_report, pivot_metric, window_capacity_sweep

from conftest import emit


def test_fig09_window_vs_capacity_uniform(benchmark, uniform, scale, processes):
    rows = benchmark.pedantic(
        window_capacity_sweep,
        kwargs=dict(
            dataset=uniform,
            capacities=scale.capacities,
            n_queries=scale.n_queries,
            processes=processes,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 9: window queries vs packet capacity (UNIFORM)",
        figure_report(rows, x_key="capacity", title="Fig 9"),
    )

    # Shape check: averaged over packet capacities, DSI's access latency beats
    # the R-tree and stays within a modest margin of HCI.  (The paper reports
    # a clear per-capacity win over both; our reproduction wins clearly at
    # small/medium capacities and only reaches parity at the largest ones --
    # see EXPERIMENTS.md.)
    latency = pivot_metric(rows, "capacity", "latency_bytes")
    dsi_mean = sum(p["DSI"] for p in latency) / len(latency)
    rtree_points = [p["R-tree"] for p in latency if p.get("R-tree") is not None]
    hci_mean = sum(p["HCI"] for p in latency) / len(latency)
    assert dsi_mean <= sum(rtree_points) / len(rtree_points) * 1.05
    assert dsi_mean <= hci_mean * 1.3


def test_fig09_window_vs_capacity_real(benchmark, real, scale, processes):
    rows = benchmark.pedantic(
        window_capacity_sweep,
        kwargs=dict(
            dataset=real,
            capacities=scale.capacities_small,
            n_queries=scale.n_queries,
            processes=processes,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 9 (REAL surrogate): window queries vs packet capacity",
        figure_report(rows, x_key="capacity", title="Fig 9 / REAL"),
    )
