"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section (see DESIGN.md, per-experiment index).  By default the benchmarks
run at a reduced scale so the whole suite finishes in minutes; setting
``REPRO_FULL_SCALE=1`` switches to the paper's setup (10,000 uniform
objects, 5,848 clustered objects, more trials) at the cost of a much longer
run time.

Each benchmark prints the rows of its figure (one curve per index) so the
shape -- who wins, by roughly what factor, where the crossovers are -- can
be compared against the paper; EXPERIMENTS.md records that comparison.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np
import pytest

from repro.purity import pure_mode
from repro.sim.parallel import default_processes
from repro.spatial import real_surrogate_dataset, uniform_dataset

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false")

#: Smoke mode shrinks the perf microbenchmark so CI can run it on every push.
BENCH_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0", "false")


@dataclass(frozen=True)
class BenchScale:
    """Scale knobs shared by all benchmarks."""

    n_uniform: int
    n_real: int
    n_queries: int
    n_queries_errors: int
    capacities: tuple
    capacities_small: tuple


REDUCED = BenchScale(
    n_uniform=1_200,
    n_real=1_000,
    n_queries=20,
    n_queries_errors=10,
    capacities=(64, 128, 256, 512),
    capacities_small=(64, 256),
)

FULL = BenchScale(
    n_uniform=10_000,
    n_real=5_848,
    n_queries=100,
    n_queries_errors=40,
    capacities=(64, 128, 256, 512),
    capacities_small=(64, 128, 256, 512),
)


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return FULL if FULL_SCALE else REDUCED


@pytest.fixture(scope="session")
def processes() -> int:
    """Worker count for the parallel sweep executor.

    ``REPRO_PROCESSES`` overrides (``1`` forces serial, which also keeps the
    per-process index-build cache shared across figure benchmarks); the
    default is the capped CPU count.  Sweep rows are identical either way --
    parallelism only changes wall-clock time.
    """
    return default_processes()


@pytest.fixture(scope="session")
def uniform(scale):
    """The paper's UNIFORM dataset (reduced by default)."""
    return uniform_dataset(scale.n_uniform, seed=7)


@pytest.fixture(scope="session")
def real(scale):
    """Surrogate of the paper's REAL dataset (clustered points)."""
    return real_surrogate_dataset(scale.n_real, seed=11)


def emit(title: str, text: str) -> None:
    """Print a figure report (pytest shows it with -s / on benchmark runs)."""
    print(f"\n{'=' * 78}\n{title}\n{'=' * 78}\n{text}\n")


# ---------------------------------------------------------------------------
# BENCH JSON writer: rounded stages, no pure-noise rewrites
# ---------------------------------------------------------------------------

#: Significant digits kept on float stages (raw perf counters carry ~15
#: noise digits that churn the committed files on every run).
_BENCH_SIG_DIGITS = 5

#: Relative delta below which a float stage counts as measurement noise.
_BENCH_REL_NOISE = 0.10


def host_metadata() -> Dict:
    """Provenance of the machine a BENCH document was measured on.

    Stored under the ``host`` key of every BENCH JSON so a number can be
    traced to the hardware and software stack that produced it -- a
    clients-per-second figure from a 1-vCPU container and one from a 4-vCPU
    runner are different experiments.  ``kernel_backend`` records whether
    the batched numpy kernels were eligible (``REPRO_PURE=1`` forces the
    pure-python reference paths everywhere).
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
        "kernel_backend": "pure" if pure_mode() else "numpy",
    }


def _round_floats(value):
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return float(f"{value:.{_BENCH_SIG_DIGITS}g}")
    if isinstance(value, dict):
        return {k: _round_floats(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_round_floats(v) for v in value]
    return value


def _non_numeric(value):
    """The document with every numeric (non-bool) leaf dropped."""
    if isinstance(value, dict):
        out = {}
        for key, sub in value.items():
            if isinstance(sub, bool) or not isinstance(sub, (int, float)):
                out[key] = _non_numeric(sub)
        return out
    return value


def _within_noise(old: Dict, new: Dict, rel_noise: float, min_time: float) -> bool:
    """Whether two BENCH documents differ only by measurement noise.

    Classification mirrors ``compare_bench``: exact-count stages must match
    exactly, timing stages where both sides sit below ``min_time`` seconds
    are pure scheduler weather, and every other numeric stage may move by
    ``rel_noise`` relative.  Non-numeric leaves must be equal.
    """
    import compare_bench

    flat_old = compare_bench._flatten(old)
    flat_new = compare_bench._flatten(new)
    if set(flat_old) != set(flat_new):
        return False
    # Non-numeric leaves (smoke flag, labels) must agree exactly.
    if _non_numeric(old) != _non_numeric(new):
        return False
    for key, old_value in flat_old.items():
        new_value = flat_new[key]
        kind = compare_bench._classify(key)
        if kind == "exact":
            if old_value != new_value:
                return False
        elif kind == "time" and old_value < min_time and new_value < min_time:
            continue
        else:
            # Speedup ratios divide two micro-timings, so their run-to-run
            # variance is far above the plain stages'; a wider floor stops
            # them alone from churning the file (the benches assert hard
            # minimum speedups separately).
            floor = max(rel_noise, 0.5) if "speedup" in key else rel_noise
            scale = max(abs(old_value), abs(new_value), 1e-12)
            if abs(new_value - old_value) > floor * scale:
                return False
    return True


def write_bench(
    path: Path,
    doc: Dict,
    *,
    rel_noise: float = _BENCH_REL_NOISE,
    min_time: float = 0.2,
    meta: Optional[Dict] = None,
) -> bool:
    """Write a BENCH document, unless the change is pure measurement noise.

    Float stages are rounded to ``_BENCH_SIG_DIGITS`` significant digits,
    and when a committed file already exists whose stages all sit inside
    the noise floor the write is skipped outright -- back-to-back commits
    stop rewriting BENCH files with meaningless timing wiggle.  Returns
    ``True`` when the file was (re)written.  Every document is stamped with
    :func:`host_metadata` under ``host`` before writing; ``meta`` records
    experiment provenance (channel topology, schedule policy, workload
    shape) under the ``meta`` key so a number can be traced to the setup
    that produced it, not just the machine.
    """
    doc = dict(doc)
    if meta:
        doc["meta"] = {**doc.get("meta", {}), **meta}
    doc.setdefault("host", host_metadata())
    rounded = _round_floats(doc)
    if path.exists():
        try:
            old = json.loads(path.read_text())
        except (ValueError, OSError):
            old = None
        if old is not None and _within_noise(old, rounded, rel_noise, min_time):
            print(f"{path.name}: all stages within the noise floor -- not rewritten")
            return False
    path.write_text(json.dumps(rounded, indent=2, sort_keys=True) + "\n")
    return True
