"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section (see DESIGN.md, per-experiment index).  By default the benchmarks
run at a reduced scale so the whole suite finishes in minutes; setting
``REPRO_FULL_SCALE=1`` switches to the paper's setup (10,000 uniform
objects, 5,848 clustered objects, more trials) at the cost of a much longer
run time.

Each benchmark prints the rows of its figure (one curve per index) so the
shape -- who wins, by roughly what factor, where the crossovers are -- can
be compared against the paper; EXPERIMENTS.md records that comparison.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.sim.parallel import default_processes
from repro.spatial import real_surrogate_dataset, uniform_dataset

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false")

#: Smoke mode shrinks the perf microbenchmark so CI can run it on every push.
BENCH_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0", "false")


@dataclass(frozen=True)
class BenchScale:
    """Scale knobs shared by all benchmarks."""

    n_uniform: int
    n_real: int
    n_queries: int
    n_queries_errors: int
    capacities: tuple
    capacities_small: tuple


REDUCED = BenchScale(
    n_uniform=1_200,
    n_real=1_000,
    n_queries=20,
    n_queries_errors=10,
    capacities=(64, 128, 256, 512),
    capacities_small=(64, 256),
)

FULL = BenchScale(
    n_uniform=10_000,
    n_real=5_848,
    n_queries=100,
    n_queries_errors=40,
    capacities=(64, 128, 256, 512),
    capacities_small=(64, 128, 256, 512),
)


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return FULL if FULL_SCALE else REDUCED


@pytest.fixture(scope="session")
def processes() -> int:
    """Worker count for the parallel sweep executor.

    ``REPRO_PROCESSES`` overrides (``1`` forces serial, which also keeps the
    per-process index-build cache shared across figure benchmarks); the
    default is the capped CPU count.  Sweep rows are identical either way --
    parallelism only changes wall-clock time.
    """
    return default_processes()


@pytest.fixture(scope="session")
def uniform(scale):
    """The paper's UNIFORM dataset (reduced by default)."""
    return uniform_dataset(scale.n_uniform, seed=7)


@pytest.fixture(scope="session")
def real(scale):
    """Surrogate of the paper's REAL dataset (clustered points)."""
    return real_surrogate_dataset(scale.n_real, seed=11)


def emit(title: str, text: str) -> None:
    """Print a figure report (pytest shows it with -s / on benchmark runs)."""
    print(f"\n{'=' * 78}\n{title}\n{'=' * 78}\n{text}\n")
