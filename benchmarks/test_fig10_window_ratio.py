"""Figure 10: window queries vs WinSideRatio at 64-byte packets.

Paper claim: cost grows with the window size for every index; DSI generally
wins, except that the R-tree's tuning time can be better for very small
windows (high spatial locality of its leaves).
"""

from __future__ import annotations

from repro.sim import figure_report, pivot_metric, window_ratio_sweep

from conftest import emit

RATIOS = (0.02, 0.05, 0.1, 0.2)


def test_fig10_window_vs_ratio_uniform(benchmark, uniform, scale, processes):
    rows = benchmark.pedantic(
        window_ratio_sweep,
        kwargs=dict(
            dataset=uniform,
            ratios=RATIOS,
            capacity=64,
            n_queries=scale.n_queries,
            processes=processes,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 10: window queries vs WinSideRatio (UNIFORM, 64-byte packets)",
        figure_report(rows, x_key="win_side_ratio", title="Fig 10"),
    )

    # Shape check: every index costs more tuning for bigger windows.
    tuning = pivot_metric(rows, "win_side_ratio", "tuning_bytes")
    for series in ("DSI", "R-tree", "HCI"):
        values = [row[series] for row in tuning if row.get(series) is not None]
        assert values[0] < values[-1]
