"""Figure 8: broadcast reorganization (window and 10NN queries vs capacity).

Paper claim: the reorganized broadcast improves window-query latency (by
roughly a quarter) and slightly improves tuning; for kNN it combines the
low latency of the conservative strategy with tuning no worse than the
aggressive strategy.
"""

from __future__ import annotations

from repro.sim import figure_report, reorganization_sweep

from conftest import emit


def test_fig08_reorganization_uniform(benchmark, uniform, scale, processes):
    rows = benchmark.pedantic(
        reorganization_sweep,
        kwargs=dict(
            dataset=uniform,
            capacities=scale.capacities_small,
            n_queries=scale.n_queries,
            k=10,
            processes=processes,
        ),
        rounds=1,
        iterations=1,
    )
    window_rows = [r for r in rows if r["figure"] == "8ab"]
    knn_rows = [r for r in rows if r["figure"] == "8cd"]
    emit(
        "Figure 8(a)(b): window queries, original vs reorganized (UNIFORM)",
        figure_report(window_rows, x_key="capacity", title="Fig 8ab"),
    )
    emit(
        "Figure 8(c)(d): 10NN queries, conservative vs aggressive vs reorganized (UNIFORM)",
        figure_report(knn_rows, x_key="capacity", title="Fig 8cd"),
    )

    # Shape checks (qualitative claims of Section 4.1).
    by_key = {(r["index"], r["capacity"]): r for r in knn_rows}
    for capacity in scale.capacities_small:
        conservative = by_key[("Conservative", capacity)]
        aggressive = by_key[("Aggressive", capacity)]
        # The conservative approach is good for access latency while the
        # aggressive approach saves tuning time (paper, Section 4.1).
        assert conservative["latency_bytes"] <= aggressive["latency_bytes"]
        assert aggressive["tuning_bytes"] <= conservative["tuning_bytes"] * 1.05
