"""Figure 12: kNN queries vs k at 64-byte packets (DSI vs R-tree vs HCI).

Paper claim: DSI performs best for every k; access latency barely moves with
k (it is bounded by the broadcast cycle) while tuning time grows slowly for
DSI and faster for the tree indexes.
"""

from __future__ import annotations

from repro.sim import figure_report, knn_k_sweep, pivot_metric

from conftest import emit

KS = (1, 3, 5, 10, 20, 30)


def test_fig12_knn_vs_k_uniform(benchmark, uniform, scale, processes):
    ks = KS if scale.n_uniform >= 5000 else (1, 3, 10, 20)
    rows = benchmark.pedantic(
        knn_k_sweep,
        kwargs=dict(
            dataset=uniform,
            ks=ks,
            capacity=64,
            n_queries=scale.n_queries,
            processes=processes,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 12: kNN queries vs k (UNIFORM, 64-byte packets)",
        figure_report(rows, x_key="k", title="Fig 12"),
    )

    # Shape checks: DSI has the lowest latency for every k, and its latency
    # stays roughly flat (bounded by the cycle) as k grows.
    latency = pivot_metric(rows, "k", "latency_bytes")
    for point in latency:
        assert point["DSI"] <= point["R-tree"]
        assert point["DSI"] <= point["HCI"]
    dsi_values = [p["DSI"] for p in latency]
    assert max(dsi_values) <= 2.0 * min(dsi_values)
