"""Ablation benchmarks for the design choices called out in DESIGN.md.

A1 -- DSI sizing rule (paper's one-packet rule vs the balanced rule) and
      index base r.
A2 -- number of interleaved broadcast segments m.
A3 -- link-error scope (navigation buckets only vs all buckets).
"""

from __future__ import annotations

import pytest

from repro.broadcast import LinkErrorModel, SystemConfig
from repro.core import DsiParameters
from repro.queries import knn_workload, window_workload
from repro.sim import IndexSpec, build_index, format_table, run_workload

from conftest import emit


def _run(dataset, config, params, workload, error_model=None):
    index = build_index(
        IndexSpec(kind="dsi", dsi_params=params), dataset, config, use_cache=True
    )
    return run_workload(index, dataset, config, workload, error_model=error_model, verify=False)


def test_ablation_dsi_sizing_and_base(benchmark, uniform, scale):
    config = SystemConfig(packet_capacity=64)
    workload = window_workload(scale.n_queries, 0.1, seed=5)

    def sweep():
        rows = []
        for label, params in [
            ("balanced r=2", DsiParameters(sizing="balanced", index_base=2)),
            ("balanced r=4", DsiParameters(sizing="balanced", index_base=4)),
            ("paper rule", DsiParameters(sizing="paper")),
            ("object_factor=1", DsiParameters(object_factor=1)),
        ]:
            res = _run(uniform, config, params, workload)
            rows.append(
                {
                    "variant": label,
                    "latency_bytes": res.mean_latency_bytes,
                    "tuning_bytes": res.mean_tuning_bytes,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation A1: DSI sizing rule and index base (window queries, 64 B)",
         format_table(rows, title="A1"))
    by_label = {r["variant"]: r for r in rows}
    # The paper's literal one-packet sizing produces huge frames; the
    # balanced rule should never be worse on tuning time.
    assert by_label["balanced r=2"]["tuning_bytes"] <= by_label["paper rule"]["tuning_bytes"] * 1.05


def test_ablation_reorganization_segments(benchmark, uniform, scale):
    config = SystemConfig(packet_capacity=64)
    workload = knn_workload(scale.n_queries, k=10, seed=6)

    def sweep():
        rows = []
        for m in (1, 2, 4):
            res = _run(uniform, config, DsiParameters(n_segments=m), workload)
            rows.append(
                {
                    "segments": m,
                    "latency_bytes": res.mean_latency_bytes,
                    "tuning_bytes": res.mean_tuning_bytes,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation A2: broadcast segments m (10NN queries, 64 B)",
         format_table(rows, title="A2"))
    assert len(rows) == 3


def test_ablation_error_scope(benchmark, uniform, scale):
    config = SystemConfig(packet_capacity=64)
    workload = window_workload(scale.n_queries_errors, 0.1, seed=8)
    params = DsiParameters(n_segments=2)

    def sweep():
        rows = []
        baseline = _run(uniform, config, params, workload)
        for scope in ("index", "all"):
            degraded = _run(
                uniform, config, params, workload,
                error_model=LinkErrorModel(theta=0.3, scope=scope, seed=3),
            )
            rows.append(
                {
                    "scope": scope,
                    "latency_pct": 100.0
                    * (degraded.mean_latency_bytes - baseline.mean_latency_bytes)
                    / baseline.mean_latency_bytes,
                    "tuning_pct": 100.0
                    * (degraded.mean_tuning_bytes - baseline.mean_tuning_bytes)
                    / baseline.mean_tuning_bytes,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation A3: link-error scope, theta = 0.3 (window queries, 64 B)",
         format_table(rows, title="A3"))
    by_scope = {r["scope"]: r for r in rows}
    # Losing data buckets as well can only hurt more than losing index
    # buckets alone.
    assert by_scope["all"]["latency_pct"] >= by_scope["index"]["latency_pct"] - 5.0
