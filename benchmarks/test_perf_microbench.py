"""Performance microbenchmark: per-stage wall-clock of the hot paths.

Times each stage of the simulate-and-sweep pipeline -- Hilbert encoding
(classical scalar loop, table-driven scalar, vectorised batch), window-cover
construction, index builds (cold and cached), workload replay and ground
truth (grid vs brute force) -- and writes the results to ``BENCH_perf.json``
at the repository root so later PRs can track the performance trajectory.

``REPRO_BENCH_SMOKE=1`` shrinks the workloads so CI can run the bench on
every push; the batch-vs-scalar speedup assertion is relaxed accordingly.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.broadcast.config import SystemConfig
from repro.queries.ground_truth import brute_answer, grid_for, matches
from repro.queries.workload import knn_workload, window_workload
from repro.sim.runner import build_index, clear_index_cache, index_cache_stats, run_workload
from repro.spatial.datasets import uniform_dataset
from repro.spatial.geometry import Point, Rect

from conftest import BENCH_SMOKE, emit, write_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

N_ENCODE = 2_000 if BENCH_SMOKE else 10_000
N_OBJECTS = 400 if BENCH_SMOKE else 1_200
N_QUERIES = 5 if BENCH_SMOKE else 20
N_TRUTH = 20 if BENCH_SMOKE else 60
# Numba-free pure Python vs numpy: at full scale the batch path is well over
# an order of magnitude faster; smoke scale keeps a conservative margin.
MIN_BATCH_SPEEDUP = 3.0 if BENCH_SMOKE else 10.0


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def test_perf_microbench():
    stages = {}

    # -- stage: dataset build (batch Hilbert values included) ----------------
    stages["dataset_build_s"], dataset = _timed(uniform_dataset, N_OBJECTS, 7)
    curve = dataset.curve

    # -- stage: Hilbert encoding ---------------------------------------------
    rng = np.random.default_rng(11)
    xs = rng.integers(0, curve.side, size=N_ENCODE, dtype=np.int64)
    ys = rng.integers(0, curve.side, size=N_ENCODE, dtype=np.int64)
    xs_list = [int(v) for v in xs]
    ys_list = [int(v) for v in ys]

    t_classical, expected = _timed(
        lambda: [curve.encode_classical(x, y) for x, y in zip(xs_list, ys_list)]
    )
    t_lut, got_lut = _timed(
        lambda: [curve.encode(x, y) for x, y in zip(xs_list, ys_list)]
    )
    t_batch, got_batch = _timed(curve.encode_many, xs, ys)
    assert got_lut == expected
    assert [int(v) for v in got_batch] == expected
    stages["hilbert_scalar_classical_s"] = t_classical
    stages["hilbert_scalar_lut_s"] = t_lut
    stages["hilbert_batch_s"] = t_batch
    stages["hilbert_batch_speedup_vs_scalar"] = t_classical / max(t_batch, 1e-9)
    assert stages["hilbert_batch_speedup_vs_scalar"] >= MIN_BATCH_SPEEDUP

    # -- stage: window covers -------------------------------------------------
    windows = [
        Rect(x, y, min(1.0, x + 0.12), min(1.0, y + 0.12))
        for x, y in rng.random((N_TRUTH, 2))
    ]
    stages["window_cover_s"], _ = _timed(
        lambda: [curve.ranges_for_rect(w, max_ranges=96) for w in windows]
    )

    # -- stage: index builds (cold vs cached) --------------------------------
    clear_index_cache()
    config = SystemConfig(packet_capacity=64)
    cold = 0.0
    for kind in ("dsi", "rtree", "hci"):
        t, _ = _timed(build_index, kind, dataset, config, True)
        cold += t
    cached = 0.0
    for kind in ("dsi", "rtree", "hci"):
        t, _ = _timed(build_index, kind, dataset, config, True)
        cached += t
    stages["index_build_cold_s"] = cold
    stages["index_build_cached_s"] = cached
    stats = index_cache_stats()
    assert stats["hits"] >= 3
    assert cached < cold

    # -- stage: workload replay ----------------------------------------------
    index = build_index("dsi", dataset, config, True)
    win = window_workload(N_QUERIES, 0.1, seed=42)
    knn = knn_workload(N_QUERIES, k=10, seed=42)
    stages["window_workload_s"], res_w = _timed(
        run_workload, index, dataset, config, win, None, True
    )
    stages["knn_workload_s"], res_k = _timed(
        run_workload, index, dataset, config, knn, None, True
    )
    assert res_w.accuracy == 1.0
    assert res_k.accuracy == 1.0

    # -- stage: ground truth (grid vs brute force) ---------------------------
    grid = grid_for(dataset)
    queries = [t.query for t in win] + [t.query for t in knn]
    stages["ground_truth_grid_s"], grid_answers = _timed(
        lambda: [grid.answer(q) for q in queries]
    )
    stages["ground_truth_brute_s"], brute_answers = _timed(
        lambda: [brute_answer(dataset, q) for q in queries]
    )
    for query, got, want in zip(queries, grid_answers, brute_answers):
        assert matches(dataset, query, got)
        assert {o.oid for o in got} == {o.oid for o in want}

    report = {
        "smoke": BENCH_SMOKE,
        "n_encode": N_ENCODE,
        "n_objects": N_OBJECTS,
        "n_queries": N_QUERIES,
        "stages": stages,
    }
    write_bench(BENCH_JSON, report)
    emit(
        "Perf microbench (per-stage wall clock)",
        "\n".join(f"{name:38s} {value:12.6f}" for name, value in stages.items())
        + f"\n\nwritten: {BENCH_JSON}",
    )
